// Package nalix is a from-scratch Go implementation of NaLIX — the
// generic natural language query interface for XML databases of Li, Yang
// and Jagadish (EDBT 2006) — together with every substrate the system
// needs: an in-memory native XML store, a Schema-Free XQuery engine with
// the mqf() meaningful-query-focus predicate, a dependency parser for the
// supported English query grammar, ontology-based term expansion, and a
// Meet-operator keyword-search baseline.
//
// The top-level Engine accepts arbitrary English query sentences. A
// sentence within the supported grammar is translated into Schema-Free
// XQuery and evaluated; one outside it is rejected with tailored feedback
// (error messages with rephrasing suggestions), driving the interactive
// query formulation loop the paper describes:
//
//	e := nalix.New()
//	e.LoadXMLString("bib.xml", bibXML)
//	ans, err := e.Ask("", `Find all books published by "Addison-Wesley" after 1991.`)
//	if ans.Accepted {
//		fmt.Println(ans.XQuery)      // the translation
//		fmt.Println(ans.Results)     // serialized result items
//	} else {
//		fmt.Println(ans.Feedback[0]) // how to rephrase
//	}
package nalix

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nalix/internal/cache"
	"nalix/internal/core"
	"nalix/internal/keyword"
	"nalix/internal/obs"
	"nalix/internal/ontology"
	"nalix/internal/shard"
	"nalix/internal/xmldb"
	"nalix/internal/xquery"
)

// queriesTotal counts Ask calls process-wide, accepted or not.
var queriesTotal = obs.NewCounter("queries_total")

// Engine is a NaLIX instance: a set of loaded XML documents plus the
// translation pipeline. Configure it first — New, LoadXML, LoadXMLString,
// AddSynonyms and EnableTracing are not synchronized — and then query:
// once configuration is done, Ask, Translate, Query and KeywordSearch are
// safe for concurrent use from multiple goroutines (evaluations are
// serialized internally by the XQuery engine).
type Engine struct {
	xq          *xquery.Engine
	ont         *ontology.Ontology
	translators map[string]*core.Translator
	keywords    map[string]*keyword.Engine
	defName     string

	// store, when non-nil, evaluates queries scatter-gather across N
	// Pre-range shards of each document (see SetShards and
	// internal/shard); e.xq doubles as its fallback engine for queries
	// that cannot be partitioned, so answers are identical either way.
	store  *shard.Store
	shards int

	// rec retains finished traces when tracing is enabled; nil keeps
	// every query on the untraced, allocation-free path.
	rec *obs.Recorder

	// reg receives per-stage latency histograms from finished traces;
	// nil means the process-wide obs.Default registry.
	reg *obs.Registry

	// The three cache layers plus the cold-ask singleflight group, all
	// nil until EnableCache (see cache.go).
	transCache  *cache.Cache[string, *core.Result]
	planCache   *cache.Cache[string, xquery.Expr]
	resultCache *cache.Cache[string, *Answer]
	flight      *cache.Flight[*Answer]

	// corpusGen counts document mutations; result-cache keys embed it
	// so no entry can outlive the corpus it was computed against.
	corpusGen atomic.Int64

	// policy filters which finished traces the recorder retains; nil
	// keeps every trace (see SetTracePolicy). policySeen counts the
	// traces no keep-rule claimed, for the deterministic 1-in-N trickle.
	policy     *TracePolicy
	policySeen atomic.Int64
}

// TracePolicy is a tail-based retention policy for the engine-global
// trace ring: the keep/drop decision is made after a call finishes,
// when its outcome is known, so the interesting traces survive
// arbitrary traffic volume instead of being evicted by the flood. The
// zero value keeps nothing but what the rules match; a nil policy (the
// default) keeps every trace, preserving the historical behaviour.
type TracePolicy struct {
	// KeepErrors retains every trace whose call returned an error.
	KeepErrors bool
	// KeepRejected retains every trace whose question was rejected with
	// feedback — the reformulation loop is debugged from exactly these.
	KeepRejected bool
	// MinLatency retains every trace at least this slow (0 disables).
	MinLatency time.Duration
	// SampleEvery retains 1 in N of the traces no other rule kept
	// (0 drops them all; 1 keeps everything).
	SampleEvery int
}

// SetTracePolicy installs a tail-based retention policy for the traces
// EnableTracing retains (nil restores keep-everything). Like
// EnableTracing, this is configuration: call it before sharing the
// engine between goroutines. Per-request traces on Answer.Trace are
// unaffected — the policy governs only the engine-global ring behind
// RecentTraces.
func (e *Engine) SetTracePolicy(p *TracePolicy) {
	e.policy = p
}

// shouldRetain applies the trace policy to one finished call.
func (e *Engine) shouldRetain(tr *obs.Trace, failed, rejected bool) bool {
	p := e.policy
	if p == nil {
		return true
	}
	switch {
	case failed && p.KeepErrors:
		return true
	case rejected && p.KeepRejected:
		return true
	case p.MinLatency > 0 && tr.Root().Duration() >= p.MinLatency:
		return true
	}
	if p.SampleEvery <= 0 {
		return false
	}
	return (e.policySeen.Add(1)-1)%int64(p.SampleEvery) == 0
}

// DefaultTraceCapacity is how many finished traces the engine retains
// when EnableTracing is called with a non-positive capacity.
const DefaultTraceCapacity = 16

// EnableTracing turns on pipeline tracing: every subsequent Ask,
// Translate, Query and KeywordSearch call records a span tree of its
// stages, attaches a snapshot to Answer.Trace, retains the last capacity
// finished traces for RecentTraces (DefaultTraceCapacity when capacity
// is not positive), and feeds the per-stage latency histograms of the
// process-wide registry. Enabling tracing is configuration: do it before
// sharing the engine between goroutines.
func (e *Engine) EnableTracing(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	e.rec = obs.NewRecorder(capacity)
}

// RecentTraces returns snapshots of the retained traces, oldest first
// (nil when tracing is not enabled or nothing ran yet).
func (e *Engine) RecentTraces() []*Trace {
	var out []*Trace
	for _, tr := range e.rec.Traces() {
		out = append(out, convertTrace(tr))
	}
	return out
}

// SetMetricsRegistry directs the per-stage latency histograms of traced
// calls into r instead of the process-wide obs.Default registry — the
// hook a server uses to give each serving surface its own metrics
// snapshot. A nil r restores the default. This is configuration: call it
// before sharing the engine between goroutines.
func (e *Engine) SetMetricsRegistry(r *obs.Registry) {
	e.reg = r
}

// registry returns the metrics registry traces observe into.
func (e *Engine) registry() *obs.Registry {
	if e.reg != nil {
		return e.reg
	}
	return obs.Default
}

// newTrace starts a trace when tracing is enabled, nil otherwise. A nil
// trace has a nil root span, which keeps every downstream recording call
// a no-op.
func (e *Engine) newTrace(name string) *obs.Trace {
	if e.rec == nil {
		return nil
	}
	return obs.NewTrace(name)
}

// finishTrace closes a trace, feeds the stage-latency histograms,
// retains it, attaches the public snapshot to the answer, and returns
// that snapshot (nil on a nil trace).
func (e *Engine) finishTrace(tr *obs.Trace, ans *Answer) *Trace {
	if tr == nil {
		return nil
	}
	tr.Finish()
	tr.ObserveInto(e.registry())
	if e.shouldRetain(tr, false, ans != nil && !ans.Accepted) {
		e.rec.Record(tr)
	}
	snap := convertTrace(tr)
	if ans != nil {
		ans.Trace = snap
	}
	return snap
}

// failTrace closes a trace on an error path: the error is recorded as a
// root attribute and the trace is finished and retained like any other,
// so failed calls remain inspectable in RecentTraces and in per-request
// traces instead of vanishing.
func (e *Engine) failTrace(tr *obs.Trace, err error) {
	if tr == nil {
		return
	}
	tr.Root().Set("error", err.Error())
	tr.Finish()
	tr.ObserveInto(e.registry())
	if e.shouldRetain(tr, true, false) {
		e.rec.Record(tr)
	}
}

// New returns an empty engine with the built-in generic thesaurus.
func New() *Engine {
	return &Engine{
		xq:          xquery.NewEngine(),
		ont:         ontology.New(),
		translators: make(map[string]*core.Translator),
		keywords:    make(map[string]*keyword.Engine),
	}
}

// LoadXML parses and registers a document under the given name. The first
// document loaded becomes the default (used when a method's docName is
// empty).
func (e *Engine) LoadXML(name string, r io.Reader) error {
	doc, err := xmldb.Parse(name, r)
	if err != nil {
		return err
	}
	e.addDoc(doc)
	return nil
}

// LoadXMLString is LoadXML over an in-memory string.
func (e *Engine) LoadXMLString(name, xml string) error {
	return e.LoadXML(name, strings.NewReader(xml))
}

// LoadDocument registers an already-built document, skipping the
// serialize/parse round-trip LoadXMLString would cost — the path scale
// tools use to serve generated million-node corpora directly. The
// document's lazy value indexes are built eagerly so one document can
// be shared read-only between several engines (a server's session
// pool). Like the other Load methods this is configuration: call before
// querying concurrently.
func (e *Engine) LoadDocument(doc *xmldb.Document) {
	doc.PrewarmValueIndexes()
	e.addDoc(doc)
}

// SetShards partitions every loaded (and subsequently loaded) document
// into n contiguous subtree-granularity shards and evaluates queries
// scatter-gather across them on a bounded worker pool; n <= 1 restores
// single-engine evaluation. Answers are byte-identical in either mode —
// queries whose results cannot be partitioned (order-by, non-FLWOR)
// fall back to the unsharded engine automatically. This is
// configuration: call it before querying concurrently.
func (e *Engine) SetShards(n int) {
	e.corpusGen.Add(1) // sharded and unsharded runs never share cached results
	if n <= 1 {
		e.store = nil
		e.shards = 1
		return
	}
	e.shards = n
	e.store = shard.NewStore(n, e.xq)
	for _, name := range e.Documents() {
		if d, ok := e.xq.Document(name); ok {
			e.store.AddDocument(d)
		}
	}
}

// Shards returns the configured shard count (1 when sharding is off).
func (e *Engine) Shards() int {
	if e.store == nil {
		return 1
	}
	return e.shards
}

// evalTraced evaluates a compiled expression, routing through the
// sharded store when sharding is enabled.
func (e *Engine) evalTraced(expr xquery.Expr, sp *obs.Span) (xquery.Sequence, error) {
	if e.store != nil {
		return e.store.EvalTraced(expr, sp)
	}
	return e.xq.EvalTraced(expr, sp)
}

func (e *Engine) addDoc(doc *xmldb.Document) {
	e.corpusGen.Add(1)
	if e.store != nil {
		e.store.AddDocument(doc) // also registers with e.xq, its fallback
	} else {
		e.xq.AddDocument(doc)
	}
	tr := core.NewTranslator(doc, e.ont)
	if e.transCache != nil {
		tr.SetCache(e.transCache)
	}
	e.translators[doc.Name] = tr
	e.keywords[doc.Name] = keyword.NewEngine(doc)
	if e.defName == "" {
		e.defName = doc.Name
	}
}

// Close publishes any pending batched statistics — the mqf relatedness
// cache's sub-threshold hit/miss counts — to the process counters. An
// Engine holds no other releasable resources, so Close never fails and
// the Engine remains usable; call it when discarding a short-lived
// engine whose batches would otherwise never reach /metrics. Loading a
// document over an existing name flushes the replaced document's counts
// automatically.
func (e *Engine) Close() {
	if e.store != nil {
		e.store.FlushStats() // covers e.xq, its fallback engine
		return
	}
	e.xq.FlushStats()
}

// AddSynonyms extends the term-expansion ontology with a group of
// domain-specific synonyms (all terms in the group become synonyms of one
// another), the paper's hook for domain ontologies.
func (e *Engine) AddSynonyms(terms ...string) {
	e.ont.AddGroup(terms...)
}

// Documents lists the loaded document names: default document first,
// the rest alphabetical, so the listing is stable across calls.
func (e *Engine) Documents() []string {
	var out []string
	if e.defName != "" {
		out = append(out, e.defName)
	}
	var rest []string
	for name := range e.translators {
		if name != e.defName {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Feedback is one validation message: an error (query rejected, rephrase
// needed) or a warning (query accepted with a caveat).
type Feedback struct {
	// IsError distinguishes rejection errors from advisory warnings.
	IsError bool
	// Code identifies the message family ("unknown-term", "no-command",
	// "unmatched-name", "unmatched-value", "pronoun", ...).
	Code string
	// Term is the offending word or phrase, when applicable.
	Term string
	// Message explains the problem in user terms.
	Message string
	// Suggestion proposes a concrete rephrasing, when one exists.
	Suggestion string
}

// String renders the feedback like the interactive CLI does.
func (f Feedback) String() string {
	kind := "warning"
	if f.IsError {
		kind = "error"
	}
	s := fmt.Sprintf("[%s] %s", kind, f.Message)
	if f.Suggestion != "" {
		s += " " + f.Suggestion
	}
	return s
}

// Answer is the outcome of asking one English question.
type Answer struct {
	// Accepted is true when the sentence was translated (warnings may
	// still be present); false means it was rejected and Feedback says
	// how to rephrase.
	Accepted bool
	// Feedback holds errors (when rejected) and warnings (always).
	Feedback []Feedback
	// ParseTree is the classified dependency parse tree, rendered one
	// node per line, for display and debugging.
	ParseTree string
	// XQuery is the generated Schema-Free XQuery text.
	XQuery string
	// Results holds the serialized XML of each result item (empty when
	// the question was only translated, not evaluated).
	Results []string
	// Values holds the flattened element/attribute values of the
	// results, the representation the paper scores precision and recall
	// on.
	Values []string
	// Bindings describes the Schema-Free XQuery variables the
	// translation introduced (the paper's Table 3): variable name,
	// database label, and whether the underlying name token is a core
	// token or an implicit insertion.
	Bindings []Binding
	// Trace is the observability record of this call — the timed span
	// tree of pipeline stages plus per-call counters. It is nil unless
	// tracing was enabled with Engine.EnableTracing.
	Trace *Trace
	// Cached is true when the answer came from the result cache (or was
	// coalesced onto another goroutine's in-flight run) instead of a
	// pipeline execution. Cached answers share slices with the cache:
	// treat them as read-only.
	Cached bool
}

// Binding is one row of the variable-binding table.
type Binding struct {
	// Var is the variable name without the '$'.
	Var string
	// Label is the database element/attribute the variable ranges over.
	Label string
	// Core marks core-token variables (Definition 3 of the paper).
	Core bool
	// Implicit marks variables created for implicit name tokens
	// (Definition 11).
	Implicit bool
}

// Translate runs the pipeline up to XQuery generation without evaluating
// the query.
func (e *Engine) Translate(docName, english string) (*Answer, error) {
	return e.translateWith(docName, english, e.newTrace("translate"))
}

// TranslateTraced is Translate with a per-call trace: the answer always
// carries Answer.Trace, whether or not EnableTracing is on — the
// request-scoped form servers use, one trace handle per request instead
// of only the engine-global ring.
func (e *Engine) TranslateTraced(docName, english string) (*Answer, error) {
	return e.translateWith(docName, english, obs.NewTrace("translate"))
}

func (e *Engine) translateWith(docName, english string, t *obs.Trace) (*Answer, error) {
	_, ans, err := e.translate(docName, english, t.Root())
	if err != nil {
		e.failTrace(t, err)
		return nil, err
	}
	e.finishTrace(t, ans)
	return ans, nil
}

func (e *Engine) translate(docName, english string, sp *obs.Span) (*core.Result, *Answer, error) {
	if docName == "" {
		docName = e.defName
	}
	tr, ok := e.translators[docName]
	if !ok {
		return nil, nil, fmt.Errorf("nalix: document %q not loaded", docName)
	}
	res, err := tr.TranslateTraced(english, sp)
	if err != nil {
		return nil, nil, err
	}
	ans := &Answer{
		Accepted:  res.Valid(),
		ParseTree: res.Tree.String(),
		XQuery:    res.XQuery,
	}
	for _, b := range res.Bindings {
		ans.Bindings = append(ans.Bindings, Binding{
			Var: b.Var, Label: b.Label, Core: b.Core, Implicit: b.Implicit,
		})
	}
	for _, f := range res.Errors {
		ans.Feedback = append(ans.Feedback, convertFeedback(f, true))
	}
	for _, f := range res.Warnings {
		ans.Feedback = append(ans.Feedback, convertFeedback(f, false))
	}
	return res, ans, nil
}

func convertFeedback(f core.Feedback, isErr bool) Feedback {
	return Feedback{
		IsError:    isErr,
		Code:       string(f.Code),
		Term:       f.Term,
		Message:    f.Message,
		Suggestion: f.Suggestion,
	}
}

// Ask translates an English sentence and, when accepted, evaluates the
// resulting XQuery against the document.
func (e *Engine) Ask(docName, english string) (*Answer, error) {
	return e.askWith(docName, english, e.newTrace("ask"))
}

// AskTraced is Ask with a per-call trace: the answer always carries
// Answer.Trace, whether or not EnableTracing is on — the request-scoped
// form servers use, one trace handle per request instead of only the
// engine-global ring.
func (e *Engine) AskTraced(docName, english string) (*Answer, error) {
	return e.askWith(docName, english, obs.NewTrace("ask"))
}

func (e *Engine) askWith(docName, english string, t *obs.Trace) (*Answer, error) {
	queriesTotal.Add(1)
	if e.resultCache == nil {
		return e.askUncached(docName, english, t)
	}
	key := e.resultKey(docName, english)
	if stored, ok := e.resultCache.Get(key); ok {
		return e.serveCached(stored, t, "hit"), nil
	}
	t.Root().Set("result_cache", "miss")
	// Each caller passes its own closure, so the leader's trace records
	// the full pipeline; followers coalesce and finish their traces as
	// cached serves.
	ans, shared, err := e.flight.Do(key, func() (*Answer, error) {
		a, err := e.askUncached(docName, english, t)
		if err != nil {
			return nil, err
		}
		stored := *a
		stored.Trace = nil
		e.resultCache.Put(key, &stored)
		return a, nil
	})
	if shared {
		if err != nil {
			e.failTrace(t, err)
			return nil, err
		}
		return e.serveCached(ans, t, "coalesced"), nil
	}
	return ans, err
}

// askUncached runs the full ask pipeline: translate, evaluate,
// serialize.
func (e *Engine) askUncached(docName, english string, t *obs.Trace) (*Answer, error) {
	root := t.Root()
	res, ans, err := e.translate(docName, english, root)
	if err != nil {
		e.failTrace(t, err)
		return nil, err
	}
	if !ans.Accepted {
		countRejected(ans)
		root.Set("accepted", "false")
		e.finishTrace(t, ans)
		return ans, nil
	}
	esp := root.Start("eval")
	seq, err := e.evalTraced(res.Query, esp)
	esp.End()
	if err != nil {
		err = fmt.Errorf("nalix: evaluating translation: %w", err)
		e.failTrace(t, err)
		return nil, err
	}
	ssp := root.Start("serialize")
	fill(ans, seq)
	ssp.SetInt("results", int64(len(ans.Results)))
	ssp.End()
	e.finishTrace(t, ans)
	return ans, nil
}

// countRejected tags a rejected query process-wide, labeled with the
// code of the first (deciding) error.
func countRejected(ans *Answer) {
	obs.Add("queries_rejected_total", 1)
	for _, f := range ans.Feedback {
		if f.IsError {
			obs.Add(obs.Labeled("queries_rejected", "code", f.Code), 1)
			return
		}
	}
}

// Query evaluates a raw (Schema-Free) XQuery string against the loaded
// documents and returns the answer (Accepted is always true; ParseTree is
// empty).
func (e *Engine) Query(xq string) (*Answer, error) {
	return e.queryWith(xq, e.newTrace("query"))
}

// QueryTraced is Query with a per-call trace: the answer always carries
// Answer.Trace, whether or not EnableTracing is on.
func (e *Engine) QueryTraced(xq string) (*Answer, error) {
	return e.queryWith(xq, obs.NewTrace("query"))
}

func (e *Engine) queryWith(xq string, t *obs.Trace) (*Answer, error) {
	root := t.Root()
	psp := root.Start("parse")
	expr, err := e.xq.Compile(xq)
	psp.End()
	if err != nil {
		e.failTrace(t, err)
		return nil, err
	}
	esp := root.Start("eval")
	seq, err := e.evalTraced(expr, esp)
	esp.End()
	if err != nil {
		e.failTrace(t, err)
		return nil, err
	}
	ans := &Answer{Accepted: true, XQuery: xq}
	ssp := root.Start("serialize")
	fill(ans, seq)
	ssp.SetInt("results", int64(len(ans.Results)))
	ssp.End()
	e.finishTrace(t, ans)
	return ans, nil
}

func fill(ans *Answer, seq xquery.Sequence) {
	for _, it := range seq {
		switch v := it.(type) {
		case xquery.NodeItem:
			ans.Results = append(ans.Results, xmldb.SerializeString(v.Node))
		default:
			ans.Results = append(ans.Results, xquery.AtomizeItem(it))
		}
	}
	ans.Values = xquery.FlattenValues(seq)
}

// KeywordSearch runs the baseline keyword interface over a document and
// returns the serialized meet results — the comparison system of the
// paper's user study.
func (e *Engine) KeywordSearch(docName, query string) ([]string, error) {
	out, _, err := e.keywordWith(docName, query, e.newTrace("keyword"))
	return out, err
}

// KeywordSearchTraced is KeywordSearch with a per-call trace, returned
// alongside the results (KeywordSearch has no Answer to attach it to).
func (e *Engine) KeywordSearchTraced(docName, query string) ([]string, *Trace, error) {
	return e.keywordWith(docName, query, obs.NewTrace("keyword"))
}

func (e *Engine) keywordWith(docName, query string, t *obs.Trace) ([]string, *Trace, error) {
	if docName == "" {
		docName = e.defName
	}
	kw, ok := e.keywords[docName]
	if !ok {
		err := fmt.Errorf("nalix: document %q not loaded", docName)
		e.failTrace(t, err)
		return nil, nil, err
	}
	var out []string
	for _, hit := range kw.SearchTraced(query, t.Root()) {
		out = append(out, xmldb.SerializeString(hit.Node))
	}
	return out, e.finishTrace(t, nil), nil
}
